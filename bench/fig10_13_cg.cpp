// Figs. 10–13 — task-parallel CG, time vs #threads, one series per
// granularity (rows/task ∈ {10, 20, 50, 100} → 1,488/744/298/149 tasks).
//
// Paper shape (GNU excluded, as in the paper):
//   g=10, 20 : GLTO ≪ Intel (fine-grained tasks favour ULTs);
//   g=50     : only GLTO(ABT) stays flat;
//   g=100    : Intel wins coarse grain; GLTO(MTH) best at low threads.
//   GLTO(ABT) flat in threads; QTH/MTH rise (FEB locks / steal contention).
#include <cstdio>

#include "apps/cg.hpp"
#include "bench_common.hpp"

namespace g = glto::apps::cg;
namespace o = glto::omp;
namespace b = glto::bench;

int main() {
  const int n = static_cast<int>(glto::common::env_i64(
      "GLTO_CG_ROWS", static_cast<std::int64_t>(g::kPaperRows)));
  const int iters = static_cast<int>(3 * b::scale());
  const auto a = g::make_spd_pentadiagonal(n);
  const std::vector<double> rhs(static_cast<std::size_t>(n), 1.0);
  std::printf("Figs 10-13: task-parallel CG (n=%d, %d CG iterations per "
              "sample)\n",
              n, iters);
  const int reps = b::reps(3);
  const o::RuntimeKind kinds[] = {
      o::RuntimeKind::intel, o::RuntimeKind::glto_abt,
      o::RuntimeKind::glto_qth, o::RuntimeKind::glto_mth};

  for (int gran : {10, 20, 50, 100}) {
    std::printf("\n--- granularity %d rows/task (%d tasks per op) ---",
                gran, g::tasks_for_granularity(n, gran));
    b::print_header("CG time (s) vs threads");
    for (auto kind : kinds) {
      for (int nth : b::thread_sweep()) {
        // Paper: OMP_WAIT_POLICY default (passive) for task parallelism.
        b::select_runtime(kind, nth, /*active_wait=*/false);
        const auto stats = b::time_runs(reps, [&] {
          std::vector<double> x;
          (void)g::solve_tasks(a, rhs, x, iters, 0.0, gran);
        });
        b::print_row(o::kind_name(kind), nth, stats);
        o::shutdown();
      }
    }
  }
  std::printf("\npaper shape: GLTO wins fine grain (g=10,20); ABT flat "
              "across threads; Intel wins coarse grain (g=100)\n");
  return 0;
}
