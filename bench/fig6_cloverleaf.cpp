// Fig. 6 — CloverLeaf-mini (compute-bound work-sharing loops), time vs
// #threads over the five runtimes.
//
// Paper shape: the pthread runtimes (GCC/ICC) win — their work-assignment
// broadcast is cheaper than GLTO's per-region ULT creation, and the cost
// repeats for every one of the 114 regions × steps.
#include <cstdio>

#include "apps/clover.hpp"
#include "bench_common.hpp"

namespace c = glto::apps::clover;
namespace o = glto::omp;
namespace b = glto::bench;

int main() {
  c::Config cfg;
  cfg.nx = 48;
  cfg.ny = 48;
  const int steps = static_cast<int>(5 * b::scale());
  std::printf("Fig 6: CloverLeaf-mini (%dx%d, %d steps, 114 parallel-for "
              "regions/step)\n",
              cfg.nx, cfg.ny, steps);
  const int reps = b::reps(3);
  b::print_header("CloverLeaf time (s) vs OpenMP threads");
  for (auto kind : o::all_kinds()) {
    for (int nth : b::thread_sweep()) {
      b::select_runtime(kind, nth, /*active_wait=*/true);
      const auto stats = b::time_runs(reps, [&] {
        c::Clover sim(cfg);
        sim.init_state();
        sim.run(steps);
      });
      b::print_row(o::kind_name(kind), nth, stats);
      o::shutdown();
    }
  }
  std::printf("paper shape: gnu/intel fastest (cheap work assignment); "
              "GLTO pays ULT creation per region\n");
  return 0;
}
