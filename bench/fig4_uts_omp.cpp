// Fig. 4 — UTS (T1XXL-like) over the five OpenMP runtimes, time vs
// #threads.
//
// Paper shape: all runtimes within a band (OpenMP is only the environment
// creator; the app manages work itself); GCC offset by compiler codegen
// (not reproducible here — same compiler everywhere); GLTO(QTH) degrades
// with thread count because of the Qthreads word-lock contention.
#include <cstdio>

#include "apps/uts.hpp"
#include "bench_common.hpp"

namespace u = glto::apps::uts;
namespace o = glto::omp;
namespace b = glto::bench;

int main() {
  u::Params p;
  p.root_seed = 42;
  p.b0 = 4.0;
  p.gen_mx = 5 + static_cast<int>(b::scale());  // T1XXL-like shape, scaled
  const auto seq = u::search_sequential(p);
  std::printf("Fig 4: UTS over OpenMP runtimes "
              "(b0=%.0f gen_mx=%d, %llu nodes)\n",
              p.b0, p.gen_mx, static_cast<unsigned long long>(seq.nodes));
  const int reps = b::reps(5);
  b::print_header("UTS execution time (s) vs OpenMP threads");
  for (auto kind : o::all_kinds()) {
    for (int nth : b::thread_sweep()) {
      b::select_runtime(kind, nth, /*active_wait=*/true);
      const auto stats = b::time_runs(reps, [&] {
        const auto r = u::search_omp(p);
        if (r.nodes != seq.nodes) {
          std::fprintf(stderr, "UTS mismatch: %llu != %llu\n",
                       static_cast<unsigned long long>(r.nodes),
                       static_cast<unsigned long long>(seq.nodes));
        }
      });
      b::print_row(o::kind_name(kind), nth, stats);
      o::shutdown();
    }
  }
  std::printf("paper shape: near-equal curves; GLTO(QTH) degrades with "
              "threads (word-lock contention)\n");
  return 0;
}
