// Fig. 14 — the Intel cut-off mechanism in isolation: a single producer
// creates 4,000 tasks; the task-deque capacity is set to 16 / 256 (the
// default) / 4,096.
//
// Paper shape: capacity 4,096 (everything queued) exposes contention —
// time grows with threads; capacity 16 behaves near-sequential up to ~8
// threads (most tasks executed undeferred), then the consumers outrun the
// producer and contention appears.
#include <cstdio>

#include "bench_common.hpp"

namespace o = glto::omp;
namespace b = glto::bench;

namespace {

void spin_work() {
  volatile int x = 0;
  for (int i = 0; i < 400; ++i) x = x + i;
}

}  // namespace

int main() {
  const int ntasks = static_cast<int>(4000 * b::scale());
  std::printf("Fig 14: Intel task cut-off, single producer, %d tasks\n",
              ntasks);
  const int reps = b::reps(5);
  std::printf("%-10s %8s %8s  %-12s %-12s %8s %10s\n", "cutoff", "threads",
              "", "mean_s", "stddev_s", "runs", "queued%");
  for (int cutoff : {16, 256, 4096}) {
    for (int nth : b::thread_sweep()) {
      b::select_runtime(o::RuntimeKind::intel, nth, /*active_wait=*/false,
                        cutoff);
      auto& rt = o::runtime();
      rt.reset_counters();
      const auto stats = b::time_runs(reps, [&] {
        o::parallel([&](int, int) {
          o::single([&] {
            for (int i = 0; i < ntasks; ++i) {
              o::task([] { spin_work(); });
            }
            o::taskwait();
          });
        });
      });
      const auto c = rt.counters();
      const auto total = c.tasks_queued + c.tasks_immediate;
      const double queued_pct =
          total == 0 ? 0.0
                     : 100.0 * static_cast<double>(c.tasks_queued) /
                           static_cast<double>(total);
      char label[32];
      std::snprintf(label, sizeof(label), "%d", cutoff);
      std::printf("%-10s %8d %8s  %-12.6f %-12.6f %8zu %9.1f%%\n", label,
                  nth, "", stats.mean(), stats.stddev(), stats.count(),
                  queued_pct);
      o::shutdown();
    }
  }
  std::printf("paper shape: 4096 = contention grows with threads; 16 = "
              "near-sequential until ~8-16 threads\n");
  return 0;
}
