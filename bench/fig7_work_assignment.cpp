// Fig. 7 — the work-assignment mechanism in isolation: time to fork+join
// an *empty* parallel region, vs #threads, per runtime.
//
// This is the per-region overhead that CloverLeaf pays 336,870 times.
// Paper shape: GCC/ICC cheapest (pool broadcast); GLTO above them (one
// GLT_ult created per member per region).
#include <cstdio>

#include "bench_common.hpp"

namespace o = glto::omp;
namespace b = glto::bench;

int main() {
  const int regions = static_cast<int>(200 * b::scale());
  std::printf("Fig 7: work-assignment overhead "
              "(%d empty parallel regions per sample)\n",
              regions);
  const int reps = b::reps(5);
  b::print_header("time per empty parallel region (s)");
  for (auto kind : o::all_kinds()) {
    for (int nth : b::thread_sweep()) {
      b::select_runtime(kind, nth, /*active_wait=*/true);
      // Warm the pools (first region creates the team threads).
      o::parallel([](int, int) {});
      auto stats = b::time_runs(reps, [&] {
        for (int i = 0; i < regions; ++i) {
          o::parallel([](int, int) {});
        }
      });
      glto::common::RunStats per_region;
      for (double s : stats.samples()) per_region.add(s / regions);
      b::print_row(o::kind_name(kind), nth, per_region);
      o::shutdown();
    }
  }
  std::printf("paper shape: gnu/intel cheapest; GLTO pays per-member ULT "
              "creation\n");
  return 0;
}
