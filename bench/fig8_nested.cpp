// Fig. 8 — nested parallelism microbenchmark, outer loop = 100 iterations.
#include "nested_bench.hpp"

int main() {
  glto::bench::run_nested_bench("Fig 8", 100);
  return 0;
}
