// Ablation — tasklets vs ULTs (paper §III-B: tasklets skip the stack and
// context, so stackless work should spawn/finish faster).
#include <benchmark/benchmark.h>

#include <atomic>

#include "abt/abt.hpp"

namespace {

std::atomic<std::uint64_t> g_sink{0};

void work(void*) { g_sink.fetch_add(1, std::memory_order_relaxed); }

void bench_ult(benchmark::State& state) {
  glto::abt::Config cfg;
  cfg.num_xstreams = 2;
  cfg.bind_threads = false;
  glto::abt::init(cfg);
  for (auto _ : state) {
    auto* u = glto::abt::ult_create(work, nullptr);
    glto::abt::join(u);
  }
  glto::abt::finalize();
}
BENCHMARK(bench_ult);

void bench_tasklet(benchmark::State& state) {
  glto::abt::Config cfg;
  cfg.num_xstreams = 2;
  cfg.bind_threads = false;
  glto::abt::init(cfg);
  for (auto _ : state) {
    auto* t = glto::abt::tasklet_create(work, nullptr);
    glto::abt::join(t);
  }
  glto::abt::finalize();
}
BENCHMARK(bench_tasklet);

/// Batched variants: create N, then join N (amortizes the join latency,
/// isolating creation cost — where the stack/context difference lives).
void bench_ult_batch(benchmark::State& state) {
  glto::abt::Config cfg;
  cfg.num_xstreams = 2;
  cfg.bind_threads = false;
  glto::abt::init(cfg);
  constexpr int kBatch = 256;
  std::vector<glto::abt::WorkUnit*> us(kBatch);
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      us[static_cast<std::size_t>(i)] = glto::abt::ult_create(work, nullptr);
    }
    for (auto* u : us) glto::abt::join(u);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  glto::abt::finalize();
}
BENCHMARK(bench_ult_batch);

void bench_tasklet_batch(benchmark::State& state) {
  glto::abt::Config cfg;
  cfg.num_xstreams = 2;
  cfg.bind_threads = false;
  glto::abt::init(cfg);
  constexpr int kBatch = 256;
  std::vector<glto::abt::WorkUnit*> ts(kBatch);
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      ts[static_cast<std::size_t>(i)] =
          glto::abt::tasklet_create(work, nullptr);
    }
    for (auto* t : ts) glto::abt::join(t);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  glto::abt::finalize();
}
BENCHMARK(bench_tasklet_batch);

}  // namespace

BENCHMARK_MAIN();
