// Ablation — task-dependency DAG vs taskwait-barrier scheduling (the
// taskdep subsystem's headline measurement).
//
// Workload: the blocked box-QP solver's two kernels (src/apps/bqp):
//  * chol  — one blocked Cholesky factor + forward/backward solve over a
//            seeded SPD matrix. In `dag` mode the whole pipeline is one
//            barrier-free `depend` DAG; in `barrier` mode the identical
//            tile kernels are fenced with taskwait after every step —
//            the only expression the facade allowed before the engine.
//  * bqp   — the full interior-point solve (≈12 factorizations plus
//            vector updates), the end-to-end shape of a real-time QP.
//
// The DAG schedule wins two ways: independent tiles of *different* sweep
// steps overlap (trailing-update tasks of step k run while step k+1's
// panel starts), and the producer never stalls at step boundaries, so
// work-stealing deques stay fed. Rows are emitted as JSONL via
// $GLTO_BENCH_JSON (CI records BENCH_taskdep.json).
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/bqp.hpp"
#include "bench_common.hpp"

namespace o = glto::omp;
namespace b = glto::bench;
namespace q = glto::apps::bqp;

namespace {

struct ModeRow {
  q::Mode mode;
  const char* label;
};

constexpr ModeRow kModes[] = {{q::Mode::taskwait, "glto-barrier"},
                              {q::Mode::taskdep, "glto-dag"}};

}  // namespace

int main() {
  int failures = 0;
  const int reps = b::reps(5);
  const int chol_n = static_cast<int>(256 * b::scale());
  const int chol_tile = 16;
  const int bqp_n = static_cast<int>(128 * b::scale());
  const int bqp_tile = 16;

  std::printf("Ablation: depend-task DAG vs taskwait barriers "
              "(glto-abt, blocked Cholesky %d/%d + box-QP IPM %d/%d)\n",
              chol_n, chol_tile, bqp_n, bqp_tile);

  std::vector<double> A0, rhs;
  q::make_spd(chol_n, 0xC401, A0, rhs);
  std::vector<double> A(A0.size());
  std::vector<double> x(static_cast<std::size_t>(chol_n));

  b::print_header("taskdep: blocked Cholesky factor+solve (s)");
  for (const ModeRow& m : kModes) {
    for (int nth : b::thread_sweep()) {
      b::select_runtime(o::RuntimeKind::glto_abt, nth,
                        /*active_wait=*/false);
      auto run = [&] {
        std::memcpy(A.data(), A0.data(), A0.size() * sizeof(double));
        q::factor_solve_inplace(A.data(), x.data(), rhs.data(), chol_n,
                                chol_tile, m.mode);
      };
      run();  // warm-up (freelists, stack caches, dep-hash buckets)
      const auto st = b::time_runs(reps, run);
      b::print_row(m.label, nth, st);
      // Self-check every cell: a timing row for a wrong answer is worse
      // than no row.
      const double cell_resid = q::residual_inf(A0, x, rhs, chol_n);
      if (!(cell_resid < 1e-8)) {
        std::printf("    FAIL residual_inf=%.3e (%s, %d threads)\n",
                    cell_resid, m.label, nth);
        ++failures;
      }
      if (m.mode == q::Mode::taskdep) {
        const o::TaskStats ts = o::task_stats();
        std::printf("    deps_registered=%llu deps_deferred=%llu "
                    "dag_ready_hits=%llu\n",
                    static_cast<unsigned long long>(ts.deps_registered),
                    static_cast<unsigned long long>(ts.deps_deferred),
                    static_cast<unsigned long long>(ts.dag_ready_hits));
      }
      o::shutdown();
    }
  }

  const q::Problem p = q::make_problem(bqp_n, bqp_tile, 16, 0xB0B);
  b::print_header("taskdep: blocked box-QP IPM solve (s)");
  for (const ModeRow& m : kModes) {
    for (int nth : b::thread_sweep()) {
      b::select_runtime(o::RuntimeKind::glto_abt, nth,
                        /*active_wait=*/false);
      double kkt = 0.0;
      auto run = [&] { kkt = q::solve(p, m.mode).kkt; };
      run();
      const auto st = b::time_runs(reps, run);
      b::print_row(m.label, nth, st);
      std::printf("    kkt=%.3e%s\n", kkt, kkt < 1e-8 ? "" : " FAIL");
      if (!(kkt < 1e-8)) ++failures;
      o::shutdown();
    }
  }

  std::printf("expected: glto-dag ≤ glto-barrier from 2 threads up "
              "(barrier idling eliminated; deps wake successors onto the "
              "work-stealing deques)\n");
  if (failures > 0) {
    std::printf("SELF-CHECK FAILED: %d cell(s) produced wrong answers\n",
                failures);
    return 1;
  }
  return 0;
}
