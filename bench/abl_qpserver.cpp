// Ablation — QP-as-a-service latency + blocking-primitive wake latency
// (ULT-native sync PR).
//
// Three sections:
//  * qpserver — the apps/qpserver driver (a producer streams box-QP solve
//    requests through a bounded sched::Channel into a flock of worker
//    ULTs) swept over ≥3 concurrency levels per backend. Rows report
//    enqueue→solved p50/p95/p99/max latency and throughput — the metric
//    real-time MPC solvers are judged on under multi-user traffic, and
//    the end-to-end proof that Channel/Condvar/Mutex suspension composes
//    under sustained load.
//  * barrier wake — K rounds of omp::barrier inside one parallel region.
//    Under the old WaitBackoff a member that went idle between rounds
//    woke from a micro-sleep (≤200 µs quantum) after the last arrival;
//    with sched::Barrier the last arriver re-deposits the flock through
//    the core's targeted-wake path, so the per-round cost must sit far
//    below the old sleep floor. The suspensions/wakes_direct deltas in
//    the JSONL prove the rounds actually parked instead of spinning.
//  * taskgroup wake — taskgroup{ task } in a loop: the group end parks on
//    the scope's CompletionLatch and the task's completion wakes it
//    directly. Same floor argument, task-completion edition.
//
// Emits JSONL per row via $GLTO_BENCH_JSON (schema v2); the qpserver rows
// splice in p50/p95/p99/max_us + throughput, the wake rows ns/op and the
// suspension counters.
#include <cstdint>
#include <cstdio>
#include <string>

#include "apps/qpserver.hpp"
#include "bench_common.hpp"
#include "glt/glt.hpp"
#include "omp/omp.hpp"
#include "sched/sync.hpp"

namespace b = glto::bench;
namespace c = glto::common;
namespace o = glto::omp;
namespace gg = glto::glt;
namespace qp = glto::apps::qpserver;

namespace {

/// Backend sweep for the service rows.
struct Backend {
  gg::Impl impl;
  const char* name;
};
constexpr Backend kBackends[] = {{gg::Impl::abt, "qpserver-abt"},
                                 {gg::Impl::qth, "qpserver-qth"},
                                 {gg::Impl::mth, "qpserver-mth"}};

/// Concurrency levels (worker-ULT flock sizes) per backend — the
/// acceptance sweep. The channel bound stays at the config default, so
/// higher concurrency shifts the latency distribution, not the backlog.
constexpr int kConcs[] = {1, 4, 16};

std::string qp_row_fields(const qp::Report& r, const qp::Config& cfg) {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "\"requests\": %d, \"queue_depth\": %d, \"completed\": %llu, "
      "\"throughput_rps\": %.1f, \"p50_us\": %llu, \"p95_us\": %llu, "
      "\"p99_us\": %llu, \"max_us\": %llu",
      cfg.requests, cfg.queue_depth,
      static_cast<unsigned long long>(r.completed), r.throughput_rps,
      static_cast<unsigned long long>(r.p50_us),
      static_cast<unsigned long long>(r.p95_us),
      static_cast<unsigned long long>(r.p99_us),
      static_cast<unsigned long long>(r.max_us));
  return std::string(buf);
}

std::string over_row_fields(const qp::Report& r, const qp::Config& cfg) {
  char buf[384];
  std::snprintf(
      buf, sizeof buf,
      "\"offered\": %llu, \"completed\": %llu, \"shed\": %llu, "
      "\"deadline_missed\": %llu, \"retried\": %llu, \"degraded\": %llu, "
      "\"goodput_rps\": %.1f, \"deadline_ms\": %d, \"rate_rps\": %.1f, "
      "\"p99_us\": %llu",
      static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.deadline_missed),
      static_cast<unsigned long long>(r.retried),
      static_cast<unsigned long long>(r.degraded), r.goodput_rps,
      cfg.deadline_ms, cfg.arrival_rps,
      static_cast<unsigned long long>(r.p99_us));
  return std::string(buf);
}

std::string wake_row_fields(std::int64_t ops, double mean_s,
                            std::uint64_t susp, std::uint64_t direct) {
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "\"ops\": %lld, \"ns_per_op\": %.0f, \"suspensions\": %llu, "
                "\"wakes_direct\": %llu",
                static_cast<long long>(ops),
                ops > 0 ? mean_s * 1e9 / static_cast<double>(ops) : 0.0,
                static_cast<unsigned long long>(susp),
                static_cast<unsigned long long>(direct));
  return std::string(buf);
}

}  // namespace

int main() {
  const int reps = b::reps(3);
  const int threads =
      static_cast<int>(c::env_i64("GLTO_QPSERVER_THREADS", 4));
  qp::Config base = qp::config_from_env();

  std::printf("Ablation: QP-as-a-service latency over blocking ULT sync\n");
  std::printf("requests=%d queue=%d n=%d iters=%d threads=%d, %d reps/cell\n",
              base.requests, base.queue_depth, base.n, base.max_iters,
              threads, reps);

  b::print_header("qpserver: streamed solves, enqueue→solved latency (s)");
  for (const Backend& be : kBackends) {
    for (int conc : kConcs) {
      gg::Config gcfg;
      gcfg.impl = be.impl;
      gcfg.num_threads = threads;
      gcfg.bind_threads = false;  // container cores < paper cores
      gg::init(gcfg);
      qp::Config cfg = base;
      cfg.concurrency = conc;
      qp::Report last;
      (void)qp::run(cfg);  // warm freelists, stacks, problem caches
      auto st = b::time_runs(reps, [&] { last = qp::run(cfg); });
      b::print_row_json(be.name, conc, st, qp_row_fields(last, cfg));
      std::printf(
          "    p50=%lluus p95=%lluus p99=%lluus max=%lluus  %.0f req/s "
          "(completed=%llu, not_converged=%llu)\n",
          static_cast<unsigned long long>(last.p50_us),
          static_cast<unsigned long long>(last.p95_us),
          static_cast<unsigned long long>(last.p99_us),
          static_cast<unsigned long long>(last.max_us), last.throughput_rps,
          static_cast<unsigned long long>(last.completed),
          static_cast<unsigned long long>(last.not_converged));
      gg::finalize();
    }
  }

  // ---- overload: paced open-loop arrivals against measured capacity,
  // deadlines armed. Rows record the shed/miss/retry/goodput accounting;
  // crash-fail only — nothing here asserts on timing.
  b::print_header("qpserver overload: paced arrivals vs capacity (abt)");
  {
    gg::Config gcfg;
    gcfg.impl = gg::Impl::abt;
    gcfg.num_threads = threads;
    gcfg.bind_threads = false;
    gg::init(gcfg);
    qp::Config cfg = base;
    cfg.concurrency = 4;
    (void)qp::run(cfg);  // warm
    const qp::Report probe = qp::run(cfg);  // closed loop, no deadline
    const double cap_rps = probe.goodput_rps > 1.0 ? probe.goodput_rps : 1.0;
    std::printf("  measured capacity: %.0f req/s (closed loop)\n", cap_rps);
    constexpr double kMults[] = {0.5, 1.0, 2.0};
    const char* kNames[] = {"qpserver-over-0.5x", "qpserver-over-1x",
                            "qpserver-over-2x"};
    for (std::size_t mi = 0; mi < 3; ++mi) {
      qp::Config ocfg = cfg;
      ocfg.arrival_rps = cap_rps * kMults[mi];
      ocfg.deadline_ms = ocfg.deadline_ms > 0 ? ocfg.deadline_ms : 50;
      ocfg.degrade = true;
      qp::Report last;
      // One run per rate: the row's payload is the Report accounting,
      // not the wall time (a paced run's duration is fixed by the rate).
      auto st = b::time_runs(1, [&] { last = qp::run(ocfg); });
      b::print_row_json(kNames[mi], cfg.concurrency, st,
                        over_row_fields(last, ocfg));
      std::printf(
          "    offered=%llu completed=%llu shed=%llu missed=%llu "
          "retried=%llu degraded=%llu  goodput=%.0f req/s p99=%lluus\n",
          static_cast<unsigned long long>(last.offered),
          static_cast<unsigned long long>(last.completed),
          static_cast<unsigned long long>(last.shed),
          static_cast<unsigned long long>(last.deadline_missed),
          static_cast<unsigned long long>(last.retried),
          static_cast<unsigned long long>(last.degraded), last.goodput_rps,
          static_cast<unsigned long long>(last.p99_us));
    }
    gg::finalize();
  }

  // ---- wake-latency microcells: the ≤200 µs sleep-quantum floor is gone.
  const int rounds = 512 * static_cast<int>(b::scale());

  b::print_header("sync wake: barrier round-trip (s)");
  for (int nth : {2, 4}) {
    b::select_runtime(o::RuntimeKind::glto_abt, nth);
    auto one = [&] {
      o::parallel(nth, [&](int, int) {
        for (int k = 0; k < rounds; ++k) o::barrier();
      });
    };
    one();  // warm
    const std::uint64_t susp0 = glto::sched::suspensions();
    const std::uint64_t dir0 = glto::sched::wakes_direct();
    auto st = b::time_runs(reps, one);
    b::print_row_json(
        "barrier-abt", nth, st,
        wake_row_fields(rounds, st.mean(), glto::sched::suspensions() - susp0,
                        glto::sched::wakes_direct() - dir0));
    o::shutdown();
  }

  b::print_header("sync wake: taskgroup end (s)");
  {
    const int groups = rounds / 4;
    b::select_runtime(o::RuntimeKind::glto_abt, 2);
    auto one = [&] {
      o::parallel(2, [&](int tid, int) {
        if (tid != 0) return;
        for (int k = 0; k < groups; ++k) {
          o::taskgroup([&] {
            o::task([] {});
          });
        }
      });
    };
    one();  // warm
    const std::uint64_t susp0 = glto::sched::suspensions();
    const std::uint64_t dir0 = glto::sched::wakes_direct();
    auto st = b::time_runs(reps, one);
    b::print_row_json(
        "taskgroup-abt", 2, st,
        wake_row_fields(groups, st.mean(), glto::sched::suspensions() - susp0,
                        glto::sched::wakes_direct() - dir0));
    o::shutdown();
  }

  return 0;
}
