// Fig. 9 — nested parallelism microbenchmark, outer loop = 1,000
// iterations (10× the Fig. 8 thread-creation volume).
//
// GLTO_BENCH_SCALE scales the iteration count down/up; default keeps the
// paper's 1,000.
#include "nested_bench.hpp"

int main() {
  const int outer = static_cast<int>(1000 * glto::bench::scale());
  glto::bench::run_nested_bench("Fig 9", outer);
  return 0;
}
