// Shared helpers for the paper-reproduction bench binaries.
//
// Every figure/table binary sweeps (runtime × threads × workload knob),
// repeats each cell, and prints a fixed-width table of mean ± stddev —
// the same series the paper plots. Knobs:
//   GLTO_BENCH_THREADS  comma list, default "1,2,4,8,18,36"
//                       (the paper's x-axes go to 72; default trimmed for
//                        container-scale runs — export the full list for
//                        paper-scale sweeps)
//   GLTO_BENCH_REPS     repetitions per cell (default figure-specific)
//   GLTO_BENCH_SCALE    workload scale multiplier (default 1)
//   GLTO_BENCH_JSON     path to append machine-readable records to: one
//                       {"schema_version","bench","runtime","threads",
//                        "mean_s","stddev_s","min_s","median_s","runs",
//                        "host_nproc","host_uname","trace_on","m_steals",
//                        "m_parks","m_wakes_spurious","m_queue_p95_ns"}
//                       JSON object per line (JSONL), emitted for every
//                       table row so CI can diff runs — schema v2 adds
//                       host identity and per-row metrics-registry
//                       deltas. min/median are the robust estimators
//                       for dispatch microbenches on noisy shared hosts
//                       (idle-park wakeup misses put multi-ms outliers in
//                       the mean at low thread counts).
#pragma once

#include <sys/utsname.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "omp/omp.hpp"
#include "sched/metrics.hpp"
#include "sched/trace.hpp"

namespace glto::bench {

inline std::vector<int> thread_sweep() {
  std::vector<int> out;
  const std::string s =
      common::env_str("GLTO_BENCH_THREADS").value_or("1,2,4,8,18,36");
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const int v = std::atoi(s.substr(pos, comma - pos).c_str());
    if (v > 0) out.push_back(v);
    pos = comma + 1;
  }
  if (out.empty()) out.push_back(1);
  return out;
}

inline int reps(int dflt) {
  return static_cast<int>(common::env_i64("GLTO_BENCH_REPS", dflt));
}

inline double scale() {
  const auto s = common::env_i64("GLTO_BENCH_SCALE", 1);
  return s > 0 ? static_cast<double>(s) : 1.0;
}

/// Times @p fn @p n times; returns per-run seconds.
template <typename Fn>
common::RunStats time_runs(int n, Fn&& fn) {
  common::RunStats stats;
  for (int i = 0; i < n; ++i) {
    common::Timer t;
    fn();
    stats.add(t.elapsed_sec());
  }
  return stats;
}

/// Selects a runtime with the paper's environment settings
/// (OMP_NESTED=true, OMP_PROC_BIND=true analog, wait policy per scenario).
inline void select_runtime(omp::RuntimeKind kind, int threads,
                           bool active_wait = true, int task_cutoff = 256,
                           bool shared_queues = false) {
  omp::SelectOptions opts;
  opts.num_threads = threads;
  opts.nested = true;
  opts.bind_threads = true;
  opts.active_wait = active_wait;
  opts.task_cutoff = task_cutoff;
  opts.shared_queues = shared_queues;
  omp::select(kind, opts);
}

/// Title of the table currently being printed; used as the "bench" field
/// of emitted JSON records.
inline std::string& current_bench() {
  static std::string name = "bench";
  return name;
}

inline std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

/// "sysname release machine" from uname(2), resolved once. Rows from
/// different hosts in one merged JSONL stream stay attributable.
inline const std::string& host_uname() {
  static const std::string id = [] {
    struct utsname u {};
    if (::uname(&u) != 0) return std::string("unknown");
    std::string s = u.sysname;
    s += ' ';
    s += u.release;
    s += ' ';
    s += u.machine;
    return s;
  }();
  return id;
}

/// Metrics-registry deltas accrued since the previous row (or since
/// startup, for the first row). Keys are m_-prefixed so they can never
/// collide with the counters individual benches splice in via extra_json
/// (the dispatch ablation already emits bare "parks"/"wakes_issued").
inline std::string metrics_row_fields() {
  static sched::MetricsSnapshot baseline;  // empty → first row = totals
  const sched::MetricsSnapshot d = sched::metrics_delta_since(baseline);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "\"m_steals\": %lld, \"m_parks\": %lld, "
                "\"m_wakes_spurious\": %lld, \"m_queue_p95_ns\": %lld",
                static_cast<long long>(d.value("sched.steals")),
                static_cast<long long>(d.value("sched.parks")),
                static_cast<long long>(d.value("sched.wakes_spurious")),
                static_cast<long long>(d.value("lat.queue_p95_ns")));
  return std::string(buf);
}

/// Appends one JSONL record to $GLTO_BENCH_JSON (no-op when unset).
/// @p extra_json, when non-empty, is spliced verbatim into the object as
/// additional fields (callers pass pre-formatted `"key": value` pairs —
/// the dispatch ablation attaches wake_policy and park/wake counters so
/// BENCH_dispatch.json can attribute wins to the wakeup protocol).
///
/// Schema v2 adds host identity (nproc + uname) and the m_* metrics
/// deltas from the unified registry; v1 consumers keyed on the original
/// seven fields are unaffected (additive change).
inline void json_append(const char* bench, const char* runtime, int threads,
                        const common::RunStats& st,
                        const std::string& extra_json = std::string()) {
  const auto path = common::env_str("GLTO_BENCH_JSON");
  if (!path) return;
  std::FILE* f = std::fopen(path->c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"schema_version\": 2, \"bench\": \"%s\", "
               "\"runtime\": \"%s\", \"threads\": %d, "
               "\"mean_s\": %.9f, \"stddev_s\": %.9f, \"min_s\": %.9f, "
               "\"median_s\": %.9f, \"runs\": %zu, "
               "\"host_nproc\": %u, \"host_uname\": \"%s\", "
               "\"trace_on\": %s, %s%s%s}\n",
               json_escape(bench).c_str(), json_escape(runtime).c_str(),
               threads, st.mean(), st.stddev(), st.min(), st.median(),
               st.count(), std::thread::hardware_concurrency(),
               json_escape(host_uname().c_str()).c_str(),
               sched::trace_enabled() ? "true" : "false",
               metrics_row_fields().c_str(),
               extra_json.empty() ? "" : ", ", extra_json.c_str());
  std::fclose(f);
}

inline void print_header(const char* title, const char* extra_col = nullptr) {
  current_bench() = title;
  std::printf("\n== %s ==\n", title);
  if (extra_col != nullptr) {
    std::printf("%-10s %8s %8s  %-12s %-12s %-12s %-10s\n", "runtime",
                "threads", extra_col, "mean_s", "stddev_s", "median_s",
                "runs");
  } else {
    std::printf("%-10s %8s  %-12s %-12s %-12s %-10s\n", "runtime", "threads",
                "mean_s", "stddev_s", "median_s", "runs");
  }
}

inline void print_row(const char* runtime, int threads,
                      const common::RunStats& st) {
  std::printf("%-10s %8d  %-12.6f %-12.6f %-12.6f %zu\n", runtime, threads,
              st.mean(), st.stddev(), st.median(), st.count());
  json_append(current_bench().c_str(), runtime, threads, st);
}

inline void print_row_extra(const char* runtime, int threads, long long extra,
                            const common::RunStats& st) {
  std::printf("%-10s %8d %8lld  %-12.6f %-12.6f %-12.6f %zu\n", runtime,
              threads, extra, st.mean(), st.stddev(), st.median(),
              st.count());
  json_append(current_bench().c_str(), runtime, threads, st);
}

/// print_row + extra JSONL fields (pre-formatted `"key": value` pairs).
inline void print_row_json(const char* runtime, int threads,
                           const common::RunStats& st,
                           const std::string& extra_json) {
  std::printf("%-18s %8d  %-12.6f %-12.6f %-12.6f %zu\n", runtime, threads,
              st.mean(), st.stddev(), st.median(), st.count());
  json_append(current_bench().c_str(), runtime, threads, st, extra_json);
}

}  // namespace glto::bench
