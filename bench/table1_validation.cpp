// Table I — OpenUH-style OpenMP Validation Suite over the five runtimes.
//
// Paper: GNU 118/123, Intel 118/123, GLTO 121 (ABT/QTH) or 122 (MTH);
// failures concentrated in omp_taskyield / omp_task_untied /
// omp_task_final. Expected shape here: GNU/Intel fail 5 (taskyield×2,
// untied×2, final); GLTO(ABT/QTH) fail 4 (no migration, but final passes);
// GLTO(MTH) fails 1 (strict taskyield only). See EXPERIMENTS.md for the
// delta discussion.
#include <cstdio>

#include "apps/validation.hpp"
#include "bench_common.hpp"

namespace v = glto::apps::validation;
namespace o = glto::omp;
namespace b = glto::bench;

int main() {
  const int nth = static_cast<int>(
      glto::common::env_i64("GLTO_BENCH_VALIDATION_THREADS", 4));
  std::printf("Table I: OpenUH-style Validation Suite 3.1 "
              "(%d OpenMP construct groups, %zu tests, %d threads)\n",
              v::construct_count(), v::suite().size(), nth);
  std::printf("%-10s %8s %8s %8s  failed tests\n", "runtime", "tests",
              "passed", "failed");
  for (auto kind : o::all_kinds()) {
    b::select_runtime(kind, nth, /*active_wait=*/false);
    const auto res = v::run_suite();
    std::printf("%-10s %8d %8d %8d  ", o::kind_name(kind), res.total,
                res.passed, res.total - res.passed);
    for (const auto& f : res.failed_names) std::printf("%s ", f.c_str());
    std::printf("\n");
    o::shutdown();
  }
  std::printf("\npaper: GNU 118/123, Intel 118/123, GLTO(ABT/QTH) 121/123, "
              "GLTO(MTH) 122/123\n");
  return 0;
}
