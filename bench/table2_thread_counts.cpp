// Table II — created/reused OS threads and created GLT_ults for the
// nested-parallelism scenario (Listing 1, outer=100, OMP_NUM_THREADS=36).
//
// Paper:  GCC   3,536 created /     0 reused / —
//         Intel 1,296 created / 2,240 reused / —
//         GLTO     36 threads /     0        / 3,500 GLT_ults
//
// Mechanics reproduced: GNU spawns a fresh (nth-1)-thread team for every
// inner region (100×35) plus the outer team (36); Intel pools workers, so
// creations track peak concurrent demand and the rest are reuses; GLTO
// creates 36 GLT_threads at init and only ULTs afterwards (100×35 inner +
// 35 outer ≈ 3,535; the paper's 3,500 counts the inner teams only).
//
// Defaults are the paper's parameters; on small containers set
// GLTO_TABLE2_THREADS / GLTO_TABLE2_OUTER lower.
#include <cstdio>

#include "bench_common.hpp"

namespace o = glto::omp;
namespace b = glto::bench;

int main() {
  const int nth = static_cast<int>(
      glto::common::env_i64("GLTO_TABLE2_THREADS", 36));
  const int outer = static_cast<int>(
      glto::common::env_i64("GLTO_TABLE2_OUTER", 100));
  std::printf("Table II: thread accounting for nested constructs "
              "(OMP_NUM_THREADS=%d, outer=%d iterations)\n",
              nth, outer);
  std::printf("%-10s %16s %16s %16s\n", "runtime", "created_threads",
              "reused_threads", "created_ults");

  for (auto kind : {o::RuntimeKind::gnu, o::RuntimeKind::intel,
                    o::RuntimeKind::glto_abt}) {
    b::select_runtime(kind, nth, /*active_wait=*/false);
    auto& rt = o::runtime();
    // No warm-up: the paper's counts include the initial team creation
    // (GCC's 3,536 = 36 main team + 100×35 inner teams).
    rt.reset_counters();

    o::parallel([&](int, int) {
      o::loop(0, outer, {o::Schedule::Static, 0},
                  [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i) {
                      o::parallel([](int, int) {});
                    }
                  });
    });

    const auto c = rt.counters();
    // +1: count the initial (main) thread the way the paper does.
    const bool is_glto = kind == o::RuntimeKind::glto_abt;
    std::printf("%-10s %16llu %16llu %16llu\n", o::kind_name(kind),
                static_cast<unsigned long long>(
                    is_glto ? c.os_threads_created
                            : c.os_threads_created + 1),
                static_cast<unsigned long long>(c.os_threads_reused),
                static_cast<unsigned long long>(c.ults_created));
    o::shutdown();
  }
  std::printf("\npaper (36 threads, outer=100): GCC 3536/0/-, "
              "Intel 1296/2240/-, GLTO 36 GLT_threads + 3500 ULTs\n");
  return 0;
}
