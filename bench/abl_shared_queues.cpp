// Ablation — GLT_SHARED_QUEUES under load imbalance (paper §IV-F): with
// per-thread pools an imbalanced task set strands work on busy threads;
// one shared queue neutralizes the imbalance by construction.
//
// Workload: tasks dispatched round-robin where every k-th task is 32×
// heavier — per-thread pools serialize the heavy tasks that land on one
// GLT_thread.
//
// Sweeps $ABT_DISPATCH × GLT_SHARED_QUEUES (like abl_glt_dispatch does for
// its axis): under the locked baseline the shared pool's win is partly
// lock-convoy relief, under work stealing it isolates pure queue-topology
// imbalance — stealing already drains stranded backlogs, so the shared
// pool's edge should shrink. JSONL rows via $GLTO_BENCH_JSON.
#include <cstdio>

#include "bench_common.hpp"
#include "common/env.hpp"

namespace o = glto::omp;
namespace b = glto::bench;
namespace c = glto::common;

namespace {

void spin(int units) {
  volatile int x = 0;
  for (int i = 0; i < units * 1000; ++i) x = x + i;
}

double run_once(bool shared, int nth, int ntasks) {
  b::select_runtime(o::RuntimeKind::glto_abt, nth, /*active_wait=*/false,
                    256, shared);
  glto::common::Timer t;
  o::parallel([&](int, int) {
    o::single([&] {
      for (int i = 0; i < ntasks; ++i) {
        const int cost = i % 8 == 0 ? 32 : 1;  // imbalanced
        o::task([cost] { spin(cost); });
      }
      o::taskwait();
    });
  });
  const double sec = t.elapsed_sec();
  o::shutdown();
  return sec;
}

}  // namespace

int main() {
  const int ntasks = static_cast<int>(400 * b::scale());
  std::printf("Ablation: GLT_SHARED_QUEUES under imbalance "
              "(%d tasks, every 8th is 32x heavier)\n",
              ntasks);
  const int reps = b::reps(5);
  struct Dispatch {
    const char* env;    // ABT_DISPATCH value
    const char* label;  // row prefix
  };
  const Dispatch dispatches[] = {{"locked", "locked"}, {"ws", "ws"}};
  b::print_header("imbalanced task set, glto-abt", "shared");
  // Sweep capped at 8 GLT_threads: the imbalance effect saturates there,
  // and the private-pool pathology under heavier oversubscription costs
  // minutes of cross-thread ping-pong without adding information.
  for (const Dispatch& d : dispatches) {
    c::env_set("ABT_DISPATCH", d.env);
    for (int shared = 0; shared <= 1; ++shared) {
      for (int nth_raw : b::thread_sweep()) {
        const int nth = nth_raw > 8 ? 8 : nth_raw;
        if (nth != nth_raw) continue;
        glto::common::RunStats st;
        for (int r = 0; r < reps; ++r) {
          st.add(run_once(shared != 0, nth, ntasks));
        }
        const std::string row =
            std::string(d.label) + (shared != 0 ? "-shared" : "-private");
        b::print_row_extra(row.c_str(), nth, shared, st);
      }
    }
  }
  c::env_set("ABT_DISPATCH", nullptr);
  std::printf("expected: shared ≤ private once threads > 1 under `locked` "
              "(imbalance + convoy neutralized, SIV-F); under `ws` the gap "
              "narrows — stealing already rebalances private pools\n");
  return 0;
}
