// Fig. 5 — UTS hand-ported to raw pthreads and to the native LWT APIs
// (no OpenMP layer): shows the Fig. 4 Qthreads degradation is the library
// itself, not the GLTO runtime.
#include <cstdio>

#include "apps/uts.hpp"
#include "bench_common.hpp"

namespace u = glto::apps::uts;
namespace b = glto::bench;

int main() {
  u::Params p;
  p.root_seed = 42;
  p.b0 = 4.0;
  p.gen_mx = 5 + static_cast<int>(b::scale());
  const auto seq = u::search_sequential(p);
  std::printf("Fig 5: UTS on pthreads and native LWT APIs "
              "(b0=%.0f gen_mx=%d, %llu nodes)\n",
              p.b0, p.gen_mx, static_cast<unsigned long long>(seq.nodes));
  const int reps = b::reps(5);

  struct Variant {
    const char* name;
    u::Result (*run)(const u::Params&, int);
  };
  const Variant variants[] = {
      {"pthreads", u::search_pthreads},
      {"abt", u::search_abt_native},
      {"qth", u::search_qth_native},
      {"mth", u::search_mth_native},
  };

  b::print_header("UTS native execution time (s) vs threads");
  for (const auto& v : variants) {
    for (int nth : b::thread_sweep()) {
      const auto stats = b::time_runs(reps, [&] {
        const auto r = v.run(p, nth);
        if (r.nodes != seq.nodes) {
          std::fprintf(stderr, "UTS mismatch on %s\n", v.name);
        }
      });
      b::print_row(v.name, nth, stats);
    }
  }
  std::printf("paper shape: pthreads/abt/mth comparable; qth slows with "
              "thread count (per-word mutex protection)\n");
  return 0;
}
