// Ablation — GLT dispatch overhead (paper §III-B claims the extra GLT
// layer is negligible thanks to header-only static inlining; our GLT uses
// runtime dispatch, so this measures the worst case of that claim).
//
// Compares ULT create+join through the GLT API against calling the abt
// backend directly.
#include <benchmark/benchmark.h>

#include <atomic>

#include "abt/abt.hpp"
#include "glt/glt.hpp"

namespace {

std::atomic<std::uint64_t> g_sink{0};

void work(void* p) {
  g_sink.fetch_add(reinterpret_cast<std::uintptr_t>(p) + 1,
                   std::memory_order_relaxed);
}

void bench_glt_dispatch(benchmark::State& state) {
  glto::glt::Config cfg;
  cfg.impl = glto::glt::Impl::abt;
  cfg.num_threads = 2;
  cfg.bind_threads = false;
  glto::glt::init(cfg);
  for (auto _ : state) {
    auto* u = glto::glt::ult_create(work, nullptr);
    glto::glt::ult_join(u);
  }
  glto::glt::finalize();
}
BENCHMARK(bench_glt_dispatch);

void bench_abt_direct(benchmark::State& state) {
  glto::abt::Config cfg;
  cfg.num_xstreams = 2;
  cfg.bind_threads = false;
  glto::abt::init(cfg);
  for (auto _ : state) {
    auto* u = glto::abt::ult_create(work, nullptr);
    glto::abt::join(u);
  }
  glto::abt::finalize();
}
BENCHMARK(bench_abt_direct);

}  // namespace

BENCHMARK_MAIN();
