// Ablation — ULT dispatch throughput of the abt backend, locked-FIFO
// baseline vs. the Chase–Lev work-stealing scheduler (PR 1 tentpole).
//
// Two shapes per (dispatch × threads) cell:
//  * burst  — create kBurst unpinned ULTs from the primary, then join them
//             all: the fine-grained spawn storm of Figs. 4–5. The locked
//             baseline serializes every push/pop on one spinlock and pays
//             a heap allocation + stack-pool lock per spawn; the deque
//             path is lock-free end to end (owner push, freelist pop,
//             stack-cache hit) and idle xstreams steal the backlog.
//  * pingpong — create+join one ULT at a time: dispatch latency, the
//             worst case for any scheduler since there is no parallelism
//             to win back.
//
// A third section sweeps the same burst through the GLT facade for ALL
// three backends × {locked, ws} — the dispatch-parity ablation: every
// backend now runs the shared sched::WsCore, and $ABT_DISPATCH /
// $QTH_DISPATCH / $MTH_DISPATCH select each backend's seed-style locked
// baseline. (glt-over-abt doubles as the §III-B "GLT overhead is
// negligible" check against the native abt rows.) Emits JSONL per row via
// $GLTO_BENCH_JSON.
//
// Two further sections (task ABI v2 PR):
//  * burst-co — the same facade burst joined in *completion order*: a
//    sinc-style counter signals when every unit's body has run, then the
//    joins only reclaim handles (each can at most overlap a unit's
//    completion epilogue, never an unexecuted body). The creation-order
//    join makes qth's FEB joins bounce main through the word-lock table
//    whenever the thief lags, so this variant isolates pure dispatch
//    cost from join-order artifacts (the ROADMAP open item).
//    glt::ult_is_done is the per-handle form of the same probe; its
//    conformance tests live in tests/test_glt.cpp.
//  * omp-task — kBurst omp::task spawns from a single producer on
//    glto-abt: v2 inline-payload descriptors vs the boxed v1 path (a
//    std::function pushed through the deprecated overload, which spills
//    every payload). task_stats() prints the task_inline/task_alloc
//    split, proving the inline rate.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "abt/abt.hpp"
#include "bench_common.hpp"
#include "glt/glt.hpp"
#include "sched/chaos.hpp"
#include "sched/dispatch.hpp"

namespace ga = glto::abt;
namespace gg = glto::glt;
namespace b = glto::bench;
namespace c = glto::common;
namespace o = glto::omp;

namespace {

std::atomic<std::uint64_t> g_sink{0};

void work(void* p) {
  g_sink.fetch_add(reinterpret_cast<std::uintptr_t>(p) + 1,
                   std::memory_order_relaxed);
}

/// Completion-counter variant: the increment is the unit's completion
/// signal (the qthreads "sinc" fan-in shape), so the creator can wait for
/// the whole burst without joining in creation order.
std::atomic<std::uint64_t> g_done{0};

void work_counted(void* p) {
  work(p);
  g_done.fetch_add(1, std::memory_order_release);
}

constexpr int kBurst = 2048;

struct AbtRun {
  explicit AbtRun(int threads) {
    ga::Config cfg;
    cfg.num_xstreams = threads;
    cfg.bind_threads = false;  // container cores < paper cores
    ga::init(cfg);
  }
  ~AbtRun() { ga::finalize(); }
};

double run_burst_abt(int n_units) {
  std::vector<ga::WorkUnit*> us;
  us.reserve(static_cast<std::size_t>(n_units));
  c::Timer t;
  for (int i = 0; i < n_units; ++i) us.push_back(ga::ult_create(work, nullptr));
  for (auto* u : us) ga::join(u);
  return t.elapsed_sec();
}

double run_pingpong_abt(int n_units) {
  c::Timer t;
  for (int i = 0; i < n_units; ++i) {
    ga::join(ga::ult_create(work, nullptr));
  }
  return t.elapsed_sec();
}

}  // namespace

int main() {
  const int reps = b::reps(10);
  const int scale = static_cast<int>(b::scale());
  const int burst = kBurst * scale;

  std::printf("Ablation: abt dispatch — locked FIFO (seed baseline) vs "
              "Chase–Lev work stealing\n");
  std::printf("burst=%d ULTs, pingpong=%d create+join pairs, %d reps/cell\n",
              burst, burst / 4, reps);

  struct Mode {
    const char* env;   // ABT_DISPATCH value
    const char* name;  // row label
  };
  const Mode modes[] = {{"locked", "abt-locked"}, {"ws", "abt-ws"}};

  b::print_header("abt dispatch: burst spawn+join (s)");
  for (const Mode& m : modes) {
    c::env_set("ABT_DISPATCH", m.env);
    for (int nth : b::thread_sweep()) {
      AbtRun rt(nth);
      (void)run_burst_abt(burst);  // warm freelists / stack caches
      auto st = b::time_runs(reps, [&] { (void)run_burst_abt(burst); });
      b::print_row(m.name, nth, st);
    }
  }

  b::print_header("abt dispatch: create+join pingpong (s)");
  for (const Mode& m : modes) {
    c::env_set("ABT_DISPATCH", m.env);
    for (int nth : b::thread_sweep()) {
      AbtRun rt(nth);
      (void)run_pingpong_abt(burst / 4);
      auto st = b::time_runs(reps, [&] { (void)run_pingpong_abt(burst / 4); });
      b::print_row(m.name, nth, st);
    }
  }

  // Dispatch-parity sweep: the same burst through the GLT facade over all
  // three backends × {locked, ws}. One run covers what used to need three
  // GLT_IMPL invocations; glt-over-abt additionally measures the
  // runtime-dispatch layer the paper claims is negligible (§III-B).
  struct Backend {
    gg::Impl impl;
    const char* dispatch_env;  // the backend's *_DISPATCH variable
  };
  const Backend backends[] = {{gg::Impl::abt, "ABT_DISPATCH"},
                              {gg::Impl::qth, "QTH_DISPATCH"},
                              {gg::Impl::mth, "MTH_DISPATCH"}};

  b::print_header("glt backend dispatch parity: burst spawn+join (s)");
  for (const Backend& be : backends) {
    for (const Mode& m : modes) {
      c::env_set(be.dispatch_env, m.env);
      for (int nth : b::thread_sweep()) {
        gg::Config cfg;
        cfg.impl = be.impl;
        cfg.num_threads = nth;
        cfg.bind_threads = false;
        gg::init(cfg);
        auto run_glt = [&] {
          std::vector<gg::Ult*> us;
          us.reserve(static_cast<std::size_t>(burst));
          for (int i = 0; i < burst; ++i) {
            us.push_back(gg::ult_create(work, nullptr));
          }
          for (auto* u : us) gg::ult_join(u);
        };
        run_glt();  // warm freelists / stack caches
        auto st = b::time_runs(reps, run_glt);
        char row[64];
        std::snprintf(row, sizeof row, "%s-%s", gg::impl_name(be.impl),
                      m.env);
        b::print_row(row, nth, st);
        const auto gs = gg::stats();
        std::printf(
            "    steals=%llu failed_steals=%llu stack_cache_hits=%llu "
            "parks=%llu\n",
            static_cast<unsigned long long>(gs.steals),
            static_cast<unsigned long long>(gs.failed_steals),
            static_cast<unsigned long long>(gs.stack_cache_hits),
            static_cast<unsigned long long>(gs.parks));
        gg::finalize();
      }
      c::env_set(be.dispatch_env, nullptr);
    }
  }

  // Completion-order burst: identical spawn storm, but main waits on a
  // sinc-style completion counter (each ULT's body ends with one atomic
  // increment) and only joins the handles once every body has run, in
  // whatever order the units actually executed. No join can stall on a
  // not-yet-stolen ULT while completed ones wait behind it (the
  // artifact that bounced qth's FEB joins through the word-lock table),
  // so the cell measures pure dispatch throughput.
  b::print_header("glt dispatch parity: burst, completion-order join (s)");
  for (const Backend& be : backends) {
    for (const Mode& m : modes) {
      c::env_set(be.dispatch_env, m.env);
      for (int nth : b::thread_sweep()) {
        gg::Config cfg;
        cfg.impl = be.impl;
        cfg.num_threads = nth;
        cfg.bind_threads = false;
        gg::init(cfg);
        auto run_co = [&] {
          const std::uint64_t base =
              g_done.load(std::memory_order_relaxed);
          std::vector<gg::Ult*> us;
          us.reserve(static_cast<std::size_t>(burst));
          for (int i = 0; i < burst; ++i) {
            us.push_back(gg::ult_create(work_counted, nullptr));
          }
          while (g_done.load(std::memory_order_acquire) - base <
                 static_cast<std::uint64_t>(burst)) {
            gg::yield();  // run/steal the backlog instead of blocking
          }
          // Every unit has run its body; joins only reclaim handles (a
          // unit may still be in its completion epilogue — ult_is_done
          // can lag the counter by a few instructions — so the join, not
          // the probe, is the reclaim step).
          for (auto* u : us) gg::ult_join(u);
        };
        run_co();  // warm freelists / stack caches
        auto st = b::time_runs(reps, run_co);
        char row[64];
        std::snprintf(row, sizeof row, "%s-%s-co", gg::impl_name(be.impl),
                      m.env);
        b::print_row(row, nth, st);
        gg::finalize();
      }
      c::env_set(be.dispatch_env, nullptr);
    }
  }

  // omp::task descriptor ablation (task ABI v2): the fig14-shaped single
  // producer, kBurst tasks per run, over glto-abt. "v2" spawns tasks with
  // a capture-free callable (inline descriptor payload, freelist-recycled
  // TaskArg — zero heap allocations after warm-up); "boxed" pushes the
  // same work through the deprecated std::function overload, the v1 cost
  // model (type-erased callable + spilled payload on every spawn).
  //
  // The single-producer cell sweeps $GLTO_WAKE_POLICY (the fan-out
  // dispatch PR's ablation axis): `one` = targeted wake per deposit (the
  // default), `threshold` = bulk deposits engage victims proportionally,
  // `all` = the legacy per-push broadcast. JSONL rows carry the policy
  // plus park/wake counter deltas so BENCH_dispatch.json can attribute
  // wins to the wakeup protocol rather than container noise.
  const char* const kWakePolicies[] = {"one", "threshold", "all"};
  // The sweeps override $GLTO_WAKE_POLICY per cell; the caller's ambient
  // value (CI re-runs the whole binary under each policy) is restored
  // afterwards so the non-sweep cells measure what the caller asked for.
  const auto ambient_policy = c::env_str("GLTO_WAKE_POLICY");
  const auto restore_policy = [&] {
    c::env_set("GLTO_WAKE_POLICY",
               ambient_policy ? ambient_policy->c_str() : nullptr);
  };
  const auto wake_kv = [](const char* pol, const gg::Stats& s0,
                          const gg::Stats& s1) {
    char kv[256];
    std::snprintf(
        kv, sizeof kv,
        "\"wake_policy\": \"%s\", \"parks\": %llu, \"wakes_issued\": %llu, "
        "\"wakes_spurious\": %llu, \"bulk_deposits\": %llu",
        pol, static_cast<unsigned long long>(s1.parks - s0.parks),
        static_cast<unsigned long long>(s1.wakes_issued - s0.wakes_issued),
        static_cast<unsigned long long>(s1.wakes_spurious -
                                        s0.wakes_spurious),
        static_cast<unsigned long long>(s1.bulk_deposits -
                                        s0.bulk_deposits));
    return std::string(kv);
  };

  b::print_header(
      "omp task burst on glto-abt: single producer x wake policy (s)");
  for (const char* pol : kWakePolicies) {
    c::env_set("GLTO_WAKE_POLICY", pol);
    for (int nth : b::thread_sweep()) {
      b::select_runtime(o::RuntimeKind::glto_abt, nth);
      const auto run_v2 = [&] {
        o::parallel([&](int, int) {
          o::single([&] {
            for (int i = 0; i < burst; ++i) {
              o::task([] { g_sink.fetch_add(1, std::memory_order_relaxed); });
            }
            o::taskwait();
          });
        });
      };
      run_v2();  // warm the record freelists
      const auto before = o::task_stats();
      const auto gs0 = gg::stats();
      auto st = b::time_runs(reps, run_v2);
      const auto gs1 = gg::stats();
      const auto after = o::task_stats();
      char row[64];
      std::snprintf(row, sizeof row, "task-v2-%s", pol);
      b::print_row_json(row, nth, st, wake_kv(pol, gs0, gs1));
      std::printf(
          "    task_inline=+%llu task_alloc=+%llu (inline rate %.1f%%) "
          "parks=+%llu wakes=+%llu spurious=+%llu\n",
          static_cast<unsigned long long>(after.task_inline -
                                          before.task_inline),
          static_cast<unsigned long long>(after.task_alloc -
                                          before.task_alloc),
          100.0 *
              static_cast<double>(after.task_inline - before.task_inline) /
              static_cast<double>((after.task_inline - before.task_inline) +
                                  (after.task_alloc - before.task_alloc) +
                                  1e-9),
          static_cast<unsigned long long>(gs1.parks - gs0.parks),
          static_cast<unsigned long long>(gs1.wakes_issued -
                                          gs0.wakes_issued),
          static_cast<unsigned long long>(gs1.wakes_spurious -
                                          gs0.wakes_spurious));
      o::shutdown();
    }
  }
  restore_policy();

  // Multi-producer fan-out: every team member is a producer — nth
  // concurrent spawners each burst burst/nth tasks onto their own deques
  // and taskwait. This is the cell where per-push broadcast wakes
  // compound worst (every producer storms every parked worker), and where
  // targeted wakes + stealing should hold the line as nth grows.
  b::print_header(
      "omp task fan-out on glto-abt: multi-producer x wake policy (s)");
  for (const char* pol : kWakePolicies) {
    c::env_set("GLTO_WAKE_POLICY", pol);
    for (int nth : b::thread_sweep()) {
      b::select_runtime(o::RuntimeKind::glto_abt, nth);
      const int per_member = burst / (nth > 0 ? nth : 1);
      const auto run_mp = [&] {
        o::parallel([&](int, int) {
          for (int i = 0; i < per_member; ++i) {
            o::task([] { g_sink.fetch_add(1, std::memory_order_relaxed); });
          }
          o::taskwait();
        });
      };
      run_mp();  // warm the record freelists
      const auto gs0 = gg::stats();
      auto st = b::time_runs(reps, run_mp);
      const auto gs1 = gg::stats();
      char row[64];
      std::snprintf(row, sizeof row, "task-mp-%s", pol);
      b::print_row_json(row, nth, st, wake_kv(pol, gs0, gs1));
      o::shutdown();
    }
  }
  restore_policy();

  // Producer taskloop: the same 2048 indices as the single-producer cell,
  // but carved into grain-64 chunks that cross the runtime as ONE bulk
  // deposit (omp::taskloop → task_bulk → WsCore::submit_bulk) — the
  // batch-spawn half of the fan-out PR, measured beside the per-task path.
  b::print_header("omp taskloop burst on glto-abt: bulk grain chunks (s)");
  for (int nth : b::thread_sweep()) {
    b::select_runtime(o::RuntimeKind::glto_abt, nth);
    const auto run_tl = [&] {
      o::parallel([&](int, int) {
        o::single([&] {
          o::taskloop(0, burst, 64, [](std::int64_t) {
            g_sink.fetch_add(1, std::memory_order_relaxed);
          });
        });
      });
    };
    run_tl();
    const auto gs0 = gg::stats();
    auto st = b::time_runs(reps, run_tl);
    const auto gs1 = gg::stats();
    // This cell runs under the AMBIENT policy (CI's bench-smoke re-runs
    // the binary with each one): label the row with what actually ran.
    const char* ambient = glto::sched::wake_policy_name(
        glto::sched::resolve_wake_policy(glto::sched::WakePolicy::Auto));
    b::print_row_json("taskloop-g64", nth, st, wake_kv(ambient, gs0, gs1));
    o::shutdown();
  }
  // Chaos-harness overhead: the same single-producer burst with the
  // fault-injection hooks (a) disarmed — the shipping default, where every
  // hook is one relaxed load of g_chaos_on and a predicted branch — and
  // (b) armed at the CI chaos leg's probabilities. The off row must sit
  // within noise of the task-v2 cells above (the hardening layer is free
  // when unused); the on row prices what the chaos CI leg actually pays.
  b::print_header("omp task burst on glto-abt: chaos harness overhead (s)");
  {
    struct ChaosMode {
      const char* name;
      glto::sched::ChaosConfig cfg;  // default-constructed = off
    };
    ChaosMode chaos_modes[2];
    chaos_modes[0].name = "task-chaos-off";
    chaos_modes[1].name = "task-chaos-on";
    chaos_modes[1].cfg.enabled = true;
    chaos_modes[1].cfg.spawn_p = 0.02;
    chaos_modes[1].cfg.alloc_p = 0.05;
    chaos_modes[1].cfg.delay_p = 0.01;
    chaos_modes[1].cfg.seed = 42;
    for (const ChaosMode& cm : chaos_modes) {
      for (int nth : b::thread_sweep()) {
        b::select_runtime(o::RuntimeKind::glto_abt, nth);
        glto::sched::chaos_set_for_testing(cm.cfg);
        const auto run_chaos = [&] {
          o::parallel([&](int, int) {
            o::single([&] {
              for (int i = 0; i < burst; ++i) {
                o::task(
                    [] { g_sink.fetch_add(1, std::memory_order_relaxed); });
              }
              o::taskwait();
            });
          });
        };
        run_chaos();  // warm the record freelists
        const auto f0 = glto::sched::chaos_faults_injected();
        auto st = b::time_runs(reps, run_chaos);
        const auto f1 = glto::sched::chaos_faults_injected();
        char kv[96];
        std::snprintf(kv, sizeof kv,
                      "\"chaos\": %s, \"faults_injected\": %llu",
                      cm.cfg.enabled ? "true" : "false",
                      static_cast<unsigned long long>(f1 - f0));
        b::print_row_json(cm.name, nth, st, kv);
        glto::sched::chaos_set_for_testing({});
        o::shutdown();
      }
    }
  }

  b::print_header("omp task burst on glto-abt: boxed v1 baseline (s)");
  for (int nth : b::thread_sweep()) {
    b::select_runtime(o::RuntimeKind::glto_abt, nth);
    const auto run_boxed = [&] {
      o::parallel([&](int, int) {
        o::single([&] {
          for (int i = 0; i < burst; ++i) {
            std::function<void()> fn = [] {
              g_sink.fetch_add(1, std::memory_order_relaxed);
            };
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
            o::task(std::move(fn));  // v1 API shape, measured on purpose
#pragma GCC diagnostic pop
          }
          o::taskwait();
        });
      });
    };
    run_boxed();
    const auto before = o::task_stats();
    auto st = b::time_runs(reps, run_boxed);
    const auto after = o::task_stats();
    b::print_row("task-boxed", nth, st);
    std::printf("    task_inline=+%llu task_alloc=+%llu\n",
                static_cast<unsigned long long>(after.task_inline -
                                                before.task_inline),
                static_cast<unsigned long long>(after.task_alloc -
                                                before.task_alloc));
    o::shutdown();
  }

  std::printf("\nsink=%llu\n",
              static_cast<unsigned long long>(g_sink.load()));
  return 0;
}
